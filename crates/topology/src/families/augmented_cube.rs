//! The augmented cube `AQ_n` (Choudum & Sunitha \[10\]).
//!
//! `AQ_1 = K_2`; `AQ_n` consists of two copies `0·AQ_{n−1}` and
//! `1·AQ_{n−1}` plus, for each `x`, the *hypercube* edge `(0,x) ∼ (1,x)`
//! and the *complement* edge `(0,x) ∼ (1, x̄)` (low `n−1` bits flipped).
//! Unrolled, `u` is adjacent to
//!
//! * `u ⊕ 2^l` for `0 ≤ l < n` (hypercube edges), and
//! * `u ⊕ (2^{l+1} − 1)` for `1 ≤ l < n` (complement edges; `l = 0` would
//!   repeat the first hypercube edge),
//!
//! giving degree `2n − 1`. `AQ_n` is `(2n−1)`-regular with connectivity
//! `2n − 1` (for `n ≥ 4`; `AQ_3` exceptionally has κ = 4) and, for
//! `n ≥ 5`, diagnosability `2n − 1` (via \[6\]).
//!
//! Fixing the first bit splits `AQ_n` into two induced copies of
//! `AQ_{n−1}`; iterated, this yields the prefix decomposition of
//! Theorem 3.

use crate::families::minimal_partition_dim;
use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use std::sync::OnceLock;

/// The augmented cube `AQ_n` with a prefix decomposition into `AQ_m`
/// copies.
#[derive(Clone, Debug)]
pub struct AugmentedCube {
    n: usize,
    m: usize,
    /// Memoised certified fault capacity (see `driver_fault_bound`).
    capacity: OnceLock<usize>,
}

impl AugmentedCube {
    /// Build `AQ_n` with the minimal partition dimension for fault bound
    /// `δ = 2n − 1`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1 && n < usize::BITS as usize);
        let m = minimal_partition_dim(2, n, 2 * n - 1).unwrap_or_else(|| {
            panic!("AQ_{n}: no partition dimension satisfies Theorem 3 (need n ≥ 10)")
        });
        AugmentedCube {
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Build `AQ_n` with an explicit subcube dimension.
    pub fn with_partition_dim(n: usize, m: usize) -> Self {
        assert!(m >= 1 && m < n);
        AugmentedCube {
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }
}

impl Topology for AugmentedCube {
    fn node_count(&self) -> usize {
        1 << self.n
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for l in 0..self.n {
            out.push(u ^ (1 << l));
        }
        for l in 1..self.n {
            out.push(u ^ ((1 << (l + 1)) - 1));
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        2 * self.n - 1
    }
    fn max_degree(&self) -> usize {
        2 * self.n - 1
    }
    fn min_degree(&self) -> usize {
        2 * self.n - 1
    }
    fn diagnosability(&self) -> usize {
        2 * self.n - 1
    }
    fn connectivity(&self) -> usize {
        // κ(AQ_n) = 2n − 1 for n ≠ 3; κ(AQ_3) = 4 (Choudum & Sunitha).
        if self.n == 3 {
            4
        } else {
            2 * self.n - 1
        }
    }
    fn name(&self) -> String {
        format!("AQ_{}", self.n)
    }
}

impl Partitionable for AugmentedCube {
    fn part_count(&self) -> usize {
        1 << (self.n - self.m)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u >> self.m
    }
    fn representative(&self, part: usize) -> NodeId {
        part << self.m
    }
    fn part_size(&self, _part: usize) -> usize {
        1 << self.m
    }
    fn driver_fault_bound(&self) -> usize {
        // `AQ_m` parts are extremely dense (degree 2m − 1), so their probe
        // trees are shallow: 32-node `AQ_5` parts certify only 14 internal
        // nodes against δ = 2n − 1 = 19 for `AQ_10`. Cap the bound at what
        // every part can certify. The O(Δ·N) capacity scan runs once per
        // struct, memoised behind a `OnceLock`.
        *self.capacity.get_or_init(|| {
            crate::partition::certified_fault_capacity(self).min(self.diagnosability())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::diameter;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn aq1_is_k2() {
        let g = AugmentedCube {
            n: 1,
            m: 1,
            capacity: OnceLock::new(),
        };
        assert_eq!(g.neighbors(0), vec![1]);
    }

    #[test]
    fn aq2_is_k4() {
        // AQ_2: 4 nodes, 3-regular = K_4.
        assert_family_structure(&AugmentedCube::with_partition_dim(2, 1), 4, 3, true);
    }

    #[test]
    fn aq3_structure() {
        // AQ_3 is 5-regular on 8 nodes with the exceptional κ = 4.
        assert_family_structure(&AugmentedCube::with_partition_dim(3, 2), 8, 5, true);
    }

    #[test]
    fn aq4_aq5_structure() {
        assert_family_structure(&AugmentedCube::with_partition_dim(4, 2), 16, 7, true);
        assert_family_structure(&AugmentedCube::with_partition_dim(5, 3), 32, 9, true);
    }

    #[test]
    fn diameter_is_ceil_n_over_2() {
        assert_eq!(diameter(&AugmentedCube::with_partition_dim(4, 2)), 2);
        assert_eq!(diameter(&AugmentedCube::with_partition_dim(5, 3)), 3);
        assert_eq!(diameter(&AugmentedCube::with_partition_dim(6, 3)), 3);
    }

    #[test]
    fn parts_induce_augmented_cubes() {
        let g = AugmentedCube::with_partition_dim(5, 3);
        validate_partition(&g).unwrap();
        let sub = AugmentedCube {
            n: 3,
            m: 1,
            capacity: OnceLock::new(),
        };
        for p in 0..g.part_count() {
            let base = p << 3;
            for x in 0..8usize {
                let mut expect: Vec<_> = sub.neighbors(x).iter().map(|&y| base | y).collect();
                let mut got: Vec<_> = g
                    .neighbors(base | x)
                    .into_iter()
                    .filter(|&v| v >> 3 == p)
                    .collect();
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(expect, got, "part {p}, offset {x}");
            }
        }
    }

    #[test]
    fn default_partition_for_aq9() {
        // δ = 17; m minimal with 2^m > 17 → 5; parts = 2^4 = 16 ≤ 17 → fails;
        // so AQ_9 needs... check that AQ_10 works instead.
        let g = AugmentedCube::new(10);
        assert!(g.part_count() > g.diagnosability());
        g.check_partition_preconditions().unwrap();
    }
}
