//! The arrangement graph `A_{n,k}` (Day & Tripathi \[11\]).
//!
//! Nodes are the `n!/(n−k)!` k-permutations of `1..=n`; `u ∼ v` iff they
//! differ in exactly one position (the differing symbol is replaced by one
//! of the `n − k` unused symbols). `A_{n,k}` is `k(n−k)`-regular with
//! connectivity `k(n−k)` \[11\] and diagnosability `k(n−k)` (via \[6\]).
//!
//! §5.2's decomposition: fixing the k-th component partitions `A_{n,k}`
//! into `n` induced copies of `A_{n−1,k−1}`. Because there are only `n`
//! parts, the partition-driven algorithm handles at most `n − 1` faults
//! (Theorem 7's bound), strictly less than the diagnosability when
//! `k(n−k) > n − 1` — this is the one family where
//! [`Partitionable::driver_fault_bound`] differs from
//! [`Topology::diagnosability`].

use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use crate::perm::{falling_factorial, rank_kperm, unrank_kperm};

/// The arrangement graph `A_{n,k}` with the k-th-component decomposition.
#[derive(Clone, Debug)]
pub struct Arrangement {
    n: usize,
    k: usize,
}

impl Arrangement {
    /// Build `A_{n,k}` (`2 ≤ k ≤ n−1`, `n ≤ 12`). `A_{n,1}` is the
    /// complete graph and `A_{n,n−1} ≅ S_n`; both extremes are permitted
    /// by \[11\] but `k = n` would be edgeless.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n <= 12, "arrangement graph supported for n ≤ 12");
        assert!(k >= 1 && k < n, "arrangement graph needs 1 ≤ k ≤ n−1");
        Arrangement { n, k }
    }

    /// Symbol-set size `n`.
    pub fn symbols(&self) -> usize {
        self.n
    }

    /// Permutation length `k`.
    pub fn positions(&self) -> usize {
        self.k
    }
}

impl Topology for Arrangement {
    fn node_count(&self) -> usize {
        falling_factorial(self.n, self.k)
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let mut perm = Vec::with_capacity(self.k);
        unrank_kperm(u, self.n, self.k, &mut perm);
        let mut used = [false; 17];
        for &p in &perm {
            used[p as usize] = true;
        }
        for i in 0..self.k {
            let old = perm[i];
            for s in 1..=self.n as u8 {
                if !used[s as usize] {
                    perm[i] = s;
                    out.push(rank_kperm(&perm, self.n));
                }
            }
            perm[i] = old;
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.k * (self.n - self.k)
    }
    fn max_degree(&self) -> usize {
        self.k * (self.n - self.k)
    }
    fn min_degree(&self) -> usize {
        self.k * (self.n - self.k)
    }
    fn diagnosability(&self) -> usize {
        self.k * (self.n - self.k)
    }
    fn connectivity(&self) -> usize {
        self.k * (self.n - self.k)
    }
    fn name(&self) -> String {
        format!("A_({},{})", self.n, self.k)
    }
}

impl Partitionable for Arrangement {
    fn part_count(&self) -> usize {
        self.n
    }
    fn part_of(&self, u: NodeId) -> usize {
        let mut perm = Vec::with_capacity(self.k);
        unrank_kperm(u, self.n, self.k, &mut perm);
        (perm[self.k - 1] - 1) as usize
    }
    fn representative(&self, part: usize) -> NodeId {
        let c = (part + 1) as u8;
        let mut perm: Vec<u8> = (1..=self.n as u8)
            .filter(|&x| x != c)
            .take(self.k - 1)
            .collect();
        perm.push(c);
        rank_kperm(&perm, self.n)
    }
    fn part_size(&self, _part: usize) -> usize {
        falling_factorial(self.n - 1, self.k - 1)
    }

    /// Theorem 7: the n-part decomposition supports at most `n − 1`
    /// faults, even though diagnosability is `k(n−k)`.
    fn driver_fault_bound(&self) -> usize {
        (self.n - 1).min(self.diagnosability())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn a42_structure() {
        // 12 nodes, 4-regular, κ = 4.
        assert_family_structure(&Arrangement::new(4, 2), 12, 4, true);
    }

    #[test]
    fn a52_structure() {
        // 20 nodes, 6-regular.
        assert_family_structure(&Arrangement::new(5, 2), 20, 6, true);
    }

    #[test]
    fn a53_structure() {
        // 60 nodes, 6-regular.
        assert_family_structure(&Arrangement::new(5, 3), 60, 6, true);
    }

    #[test]
    fn a_n_1_is_complete() {
        let g = Arrangement::new(5, 1);
        assert_eq!(g.node_count(), 5);
        crate::verify::assert_regular(&g, 4);
    }

    #[test]
    fn neighbours_differ_in_one_position() {
        let g = Arrangement::new(5, 3);
        let mut pu = Vec::new();
        let mut pv = Vec::new();
        for u in (0..g.node_count()).step_by(11) {
            unrank_kperm(u, 5, 3, &mut pu);
            for v in g.neighbors(u) {
                unrank_kperm(v, 5, 3, &mut pv);
                let diff = pu.iter().zip(&pv).filter(|(a, b)| a != b).count();
                assert_eq!(diff, 1, "{pu:?} vs {pv:?}");
            }
        }
    }

    #[test]
    fn partition_and_fault_bound() {
        let g = Arrangement::new(6, 3);
        validate_partition(&g).unwrap();
        assert_eq!(g.part_count(), 6);
        assert_eq!(g.diagnosability(), 9);
        assert_eq!(g.driver_fault_bound(), 5);
        g.check_partition_preconditions().unwrap();
    }

    #[test]
    fn a52_preconditions_fail() {
        // Parts of A_{5,2} have 4 nodes = n − 1 = fault bound: not enough.
        let g = Arrangement::new(5, 2);
        assert!(g.check_partition_preconditions().is_err());
    }
}
