//! The enhanced hypercube `Q_{n,m}` (Tzeng & Wei \[22\]).
//!
//! `Q_n` plus the *skip* matching: node `u` is additionally adjacent to the
//! node obtained by flipping bits `n−1, n−2, …, m−1` (the top `n − m + 1`
//! components), for a parameter `1 ≤ m ≤ n`. `Q_{n,1}` is the folded
//! hypercube. `Q_{n,m}` is `(n+1)`-regular with connectivity `n + 1` and,
//! for `n ≥ 4`, diagnosability `n + 1` (via \[6\]).
//!
//! As for `FQ_n`, the general algorithm partitions the spanning `Q_n` by
//! prefixes; the skip edges flip bit `n−1` and therefore always cross
//! parts.

use crate::families::minimal_partition_dim;
use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use std::sync::OnceLock;

/// The enhanced hypercube `Q_{n,m}` with the spanning-`Q_n` prefix
/// decomposition (`part_dim` = the subcube dimension of the decomposition,
/// distinct from the skip parameter `m`).
#[derive(Clone, Debug)]
pub struct EnhancedHypercube {
    n: usize,
    skip_m: usize,
    part_dim: usize,
    /// Memoised certified fault capacity (see `driver_fault_bound`).
    capacity: OnceLock<usize>,
}

impl EnhancedHypercube {
    /// Build `Q_{n,m}` with the minimal valid partition dimension for fault
    /// bound `δ = n + 1`.
    pub fn new(n: usize, skip_m: usize) -> Self {
        assert!(n >= 2 && n < usize::BITS as usize - 1);
        assert!(
            (1..n).contains(&skip_m),
            "enhanced hypercube needs 1 ≤ m ≤ n−1 (m = n would duplicate a hypercube edge)"
        );
        let part_dim = minimal_partition_dim(2, n, n + 1).unwrap_or_else(|| {
            panic!("Q_({n},{skip_m}): no partition dimension satisfies Theorem 3")
        });
        EnhancedHypercube {
            n,
            skip_m,
            part_dim,
            capacity: OnceLock::new(),
        }
    }

    /// Build with an explicit partition subcube dimension.
    pub fn with_partition_dim(n: usize, skip_m: usize, part_dim: usize) -> Self {
        assert!((1..n).contains(&skip_m));
        assert!(part_dim >= 1 && part_dim < n);
        EnhancedHypercube {
            n,
            skip_m,
            part_dim,
            capacity: OnceLock::new(),
        }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The skip parameter `m` of `Q_{n,m}`.
    pub fn skip_param(&self) -> usize {
        self.skip_m
    }

    /// Mask flipping bits `n−1 .. m−1`.
    fn skip_mask(&self) -> usize {
        let full = (1usize << self.n) - 1;
        let low = (1usize << (self.skip_m - 1)) - 1;
        full ^ low
    }
}

impl Topology for EnhancedHypercube {
    fn node_count(&self) -> usize {
        1 << self.n
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for i in 0..self.n {
            out.push(u ^ (1 << i));
        }
        out.push(u ^ self.skip_mask());
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n + 1
    }
    fn max_degree(&self) -> usize {
        self.n + 1
    }
    fn min_degree(&self) -> usize {
        self.n + 1
    }
    fn diagnosability(&self) -> usize {
        self.n + 1
    }
    fn connectivity(&self) -> usize {
        self.n + 1
    }
    fn name(&self) -> String {
        format!("Q_({},{})", self.n, self.skip_m)
    }
}

impl Partitionable for EnhancedHypercube {
    fn part_count(&self) -> usize {
        1 << (self.n - self.part_dim)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u >> self.part_dim
    }
    fn representative(&self, part: usize) -> NodeId {
        part << self.part_dim
    }
    fn part_size(&self, _part: usize) -> usize {
        1 << self.part_dim
    }
    fn driver_fault_bound(&self) -> usize {
        // The subcube parts certify at most 10 internal nodes for
        // part_dim = 4, below δ = n + 1 from n = 9 up; cap the bound at
        // what every part can certify. The O(Δ·N) capacity scan runs once
        // per struct, memoised behind a `OnceLock`.
        *self.capacity.get_or_init(|| {
            crate::partition::certified_fault_capacity(self).min(self.diagnosability())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AdjGraph;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn q41_is_folded_hypercube() {
        use crate::families::folded_hypercube::FoldedHypercube;
        let e = EnhancedHypercube::with_partition_dim(4, 1, 2);
        let f = FoldedHypercube::with_partition_dim(4, 2);
        let ge = AdjGraph::from_topology(&e);
        let gf = AdjGraph::from_topology(&f);
        for u in 0..16 {
            assert_eq!(ge.neighbors(u), gf.neighbors(u), "u={u}");
        }
    }

    #[test]
    fn structure_various_skips() {
        assert_family_structure(&EnhancedHypercube::with_partition_dim(4, 2, 2), 16, 5, true);
        assert_family_structure(&EnhancedHypercube::with_partition_dim(4, 3, 2), 16, 5, true);
        assert_family_structure(&EnhancedHypercube::with_partition_dim(5, 4, 3), 32, 6, true);
    }

    #[test]
    fn skip_mask_flips_top_bits() {
        let e = EnhancedHypercube::with_partition_dim(6, 4, 3);
        // flips bits 5..3: mask = 0b111000
        assert_eq!(e.skip_mask(), 0b111000);
    }

    #[test]
    #[should_panic(expected = "m ≤ n−1")]
    fn skip_m_equal_n_rejected() {
        // m = n would make the skip edge coincide with the top hypercube
        // dimension, creating a parallel edge.
        EnhancedHypercube::new(4, 4);
    }

    #[test]
    fn skip_edges_cross_parts() {
        let e = EnhancedHypercube::with_partition_dim(6, 3, 3);
        for u in 0..e.node_count() {
            let v = u ^ e.skip_mask();
            assert_ne!(e.part_of(u), e.part_of(v));
        }
        validate_partition(&e).unwrap();
    }

    #[test]
    fn default_partition_for_q9_3() {
        let e = EnhancedHypercube::new(9, 3);
        assert_eq!(e.part_count(), 32);
        e.check_partition_preconditions().unwrap();
    }
}
