//! The pancake graph `P_n` (Akers & Krishnamurthy \[2\]).
//!
//! Nodes are the `n!` permutations of `1..=n`; `u ∼ v` iff `v` is obtained
//! from `u` by reversing a prefix of length `l ∈ {2, …, n}`. `P_n` is
//! `(n−1)`-regular with connectivity `n − 1` \[2\] and, for `n ≥ 4`,
//! diagnosability `n − 1` (via \[6\]).
//!
//! §5.2's decomposition: fixing the last symbol partitions `P_n` into `n`
//! induced copies of `P_{n−1}` (prefix reversals of length `< n` never
//! move position `n`).

use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use crate::perm::{factorial, rank_perm, unrank_perm};

/// The pancake graph `P_n` with the last-symbol decomposition.
#[derive(Clone, Debug)]
pub struct Pancake {
    n: usize,
}

impl Pancake {
    /// Build `P_n` (`2 ≤ n ≤ 12`).
    pub fn new(n: usize) -> Self {
        assert!(
            (2..=12).contains(&n),
            "pancake graph supported for 2 ≤ n ≤ 12"
        );
        Pancake { n }
    }

    /// Symbol-set size `n`.
    pub fn dim(&self) -> usize {
        self.n
    }
}

impl Topology for Pancake {
    fn node_count(&self) -> usize {
        factorial(self.n)
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let mut perm = Vec::with_capacity(self.n);
        unrank_perm(u, self.n, &mut perm);
        for l in 2..=self.n {
            perm[..l].reverse();
            out.push(rank_perm(&perm, self.n));
            perm[..l].reverse();
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n - 1
    }
    fn max_degree(&self) -> usize {
        self.n - 1
    }
    fn min_degree(&self) -> usize {
        self.n - 1
    }
    fn diagnosability(&self) -> usize {
        self.n - 1
    }
    fn connectivity(&self) -> usize {
        self.n - 1
    }
    fn name(&self) -> String {
        format!("P_{}", self.n)
    }
}

impl Partitionable for Pancake {
    fn part_count(&self) -> usize {
        self.n
    }
    fn part_of(&self, u: NodeId) -> usize {
        let mut perm = Vec::with_capacity(self.n);
        unrank_perm(u, self.n, &mut perm);
        (perm[self.n - 1] - 1) as usize
    }
    fn representative(&self, part: usize) -> NodeId {
        let c = (part + 1) as u8;
        let mut perm: Vec<u8> = (1..=self.n as u8).filter(|&x| x != c).collect();
        perm.push(c);
        rank_perm(&perm, self.n)
    }
    fn part_size(&self, _part: usize) -> usize {
        factorial(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn p3_is_c6() {
        assert_family_structure(&Pancake::new(3), 6, 2, true);
    }

    #[test]
    fn p4_structure() {
        assert_family_structure(&Pancake::new(4), 24, 3, true);
    }

    #[test]
    fn p5_structure() {
        assert_family_structure(&Pancake::new(5), 120, 4, true);
    }

    #[test]
    fn prefix_reversals() {
        let g = Pancake::new(4);
        // identity -> [2,1,3,4], [3,2,1,4], [4,3,2,1]
        let nb = g.neighbors(0);
        let mut perms = Vec::new();
        let mut buf = Vec::new();
        for v in nb {
            unrank_perm(v, 4, &mut buf);
            perms.push(buf.clone());
        }
        assert!(perms.contains(&vec![2, 1, 3, 4]));
        assert!(perms.contains(&vec![3, 2, 1, 4]));
        assert!(perms.contains(&vec![4, 3, 2, 1]));
    }

    #[test]
    fn pancake_has_odd_cycles_for_n_ge_3() {
        // Unlike the star graph, P_n is not bipartite (prefix reversals of
        // length 3 are even permutations, length 2 odd — mixing parities
        // only rules out the obvious 2-colouring; check directly).
        let g = Pancake::new(4);
        let mut colour = vec![u8::MAX; g.node_count()];
        let mut stack = vec![0usize];
        colour[0] = 0;
        let mut bipartite = true;
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                if colour[v] == u8::MAX {
                    colour[v] = colour[u] ^ 1;
                    stack.push(v);
                } else if colour[v] == colour[u] {
                    bipartite = false;
                }
            }
        }
        assert!(!bipartite);
    }

    #[test]
    fn last_symbol_partition() {
        let g = Pancake::new(5);
        validate_partition(&g).unwrap();
        assert_eq!(g.part_count(), 5);
        assert_eq!(g.part_size(0), 24);
        g.check_partition_preconditions().unwrap();
    }

    #[test]
    fn only_full_reversal_crosses_parts() {
        let g = Pancake::new(5);
        let mut perm = Vec::new();
        for u in (0..g.node_count()).step_by(7) {
            unrank_perm(u, 5, &mut perm);
            let nb = g.neighbors(u);
            let crossing = nb.iter().filter(|&&v| g.part_of(v) != g.part_of(u)).count();
            assert_eq!(crossing, 1, "u={perm:?}");
        }
    }
}
