//! The fourteen interconnection-network families of §5 of the paper.
//!
//! Bit-string families (node = an `n`-bit string, id = the string read as an
//! integer, component `u_i` = bit `i`, "first" components = the high bits):
//! [`hypercube`], [`crossed_cube`], [`twisted_cube`], [`folded_hypercube`],
//! [`enhanced_hypercube`], [`augmented_cube`], [`shuffle_cube`],
//! [`twisted_n_cube`].
//!
//! Radix-`k` families (node = `n` digits base `k`): [`kary`],
//! [`augmented_kary`].
//!
//! Permutation families (node = lexicographic rank of a (partial)
//! permutation of `1..=n`): [`star`], [`nk_star`], [`pancake`],
//! [`arrangement`].
//!
//! Every family implements [`crate::graph::Topology`] with arithmetic
//! adjacency (no stored edges) and [`crate::partition::Partitionable`] with
//! the exact decomposition the paper uses for it in §5.

pub mod arrangement;
pub mod augmented_cube;
pub mod augmented_kary;
pub mod crossed_cube;
pub mod enhanced_hypercube;
pub mod folded_hypercube;
pub mod hypercube;
pub mod kary;
pub mod nk_star;
pub mod pancake;
pub mod shuffle_cube;
pub mod star;
pub mod twisted_cube;
pub mod twisted_n_cube;

pub use arrangement::Arrangement;
pub use augmented_cube::AugmentedCube;
pub use augmented_kary::AugmentedKAryNCube;
pub use crossed_cube::CrossedCube;
pub use enhanced_hypercube::EnhancedHypercube;
pub use folded_hypercube::FoldedHypercube;
pub use hypercube::Hypercube;
pub use kary::KAryNCube;
pub use nk_star::NKStar;
pub use pancake::Pancake;
pub use shuffle_cube::ShuffleCube;
pub use star::StarGraph;
pub use twisted_cube::TwistedCube;
pub use twisted_n_cube::TwistedNCube;

/// Choose the minimal subcube dimension `m` for a prefix decomposition of a
/// base-`radix`, dimension-`n` family such that a part has more than
/// `bound + 1` nodes (`radix^m > bound + 1`), together with the companion
/// requirement that the number of parts (`radix^{n−m}`) exceeds `bound`.
/// Returns `None` if no `m < n` satisfies both.
///
/// §5.1/§5.2 of the paper ask only for `radix^m > bound`, but that is one
/// node short at the boundary: a tree spanning a part of `bound + 1` nodes
/// has at most `bound` internal nodes, so `Set_Builder`'s certificate
/// `|C_1 ∪ … ∪ C_i| > δ` can never fire inside it (e.g. `Q_7` with
/// `m = 3`: 8-node parts, δ = 7). Requiring one extra node repairs the
/// argument without changing any non-boundary case.
pub fn minimal_partition_dim(radix: usize, n: usize, bound: usize) -> Option<usize> {
    let mut m = 1;
    let mut size = radix;
    while size <= bound + 1 {
        m += 1;
        size = size.checked_mul(radix)?;
        if m >= n {
            return None;
        }
    }
    // number of parts must exceed the bound as well
    let mut parts = 1usize;
    for _ in 0..(n - m) {
        parts = parts.checked_mul(radix)?;
    }
    (parts > bound).then_some(m)
}

#[cfg(test)]
mod tests {
    use super::minimal_partition_dim;

    #[test]
    fn hypercube_dims_match_paper() {
        // §5.1 asks for m minimal with 2^m > n; we require 2^m > n + 1
        // (see the doc comment), which only moves the boundary case n = 7.
        assert_eq!(minimal_partition_dim(2, 7, 7), Some(4));
        assert_eq!(minimal_partition_dim(2, 8, 8), Some(4));
        assert_eq!(minimal_partition_dim(2, 10, 10), Some(4));
        // n = 5: no m gives both big parts and enough parts.
        assert_eq!(minimal_partition_dim(2, 5, 5), None);
    }

    #[test]
    fn kary_dims_match_paper() {
        // §5.2: m minimal with k^m > 2n.
        assert_eq!(minimal_partition_dim(3, 6, 12), Some(3));
        assert_eq!(minimal_partition_dim(4, 4, 8), Some(2));
        // (3,5): 3^3 = 27 > 10 but only 3^2 = 9 ≤ 10 parts -> unusable.
        assert_eq!(minimal_partition_dim(3, 5, 10), None);
        // excluded case (k,n) = (3,3): 3^2 > 6 but 3^1 = 3 ≤ 6 parts.
        assert_eq!(minimal_partition_dim(3, 3, 6), None);
    }
}
