//! A twisted cube `TQ_n`.
//!
//! Hilbers, Koopman and van de Snepscheut's twisted cube \[15\] is defined for
//! odd `n` only, while the paper's §5.1 uses a twisted cube that decomposes,
//! for *every* `n ≥ 2`, into two induced copies of `TQ_{n−1}` obtained by
//! fixing leading bits. We therefore implement the recursive
//! "two copies + twisted matching" construction (see DESIGN.md,
//! *Substitutions*):
//!
//! * `TQ_1 = K_2`;
//! * `TQ_n` consists of `0·TQ_{n−1}` and `1·TQ_{n−1}` plus the perfect
//!   matching `(0, x) ∼ (1, σ(x))`, where the twist `σ` flips bit 0 of `x`
//!   exactly when the remaining bits `x_{w−1}…x_1` have odd parity (an
//!   involution — the parity of the upper bits is unchanged by it — hence a
//!   well-defined matching, and one that mirrors the parity functions of
//!   Hilbers et al.).
//!
//! This graph is `n`-regular, `n`-connected (machine-verified for small `n`
//! by the Menger check below) and has the prefix decomposition required by
//! Theorem 3. Diagnosability is `n` for `n ≥ 4` via Chang et al. \[6\]
//! (`n`-regular + `n`-connected + `≥ 2n+3` nodes).

use crate::families::minimal_partition_dim;
use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use std::sync::OnceLock;

/// The twist applied by the level-`w` matching to a `w`-bit string: flip
/// bit 0 iff the bits above it have odd parity (identity when `w < 2`).
/// An involution, and parity-mixing — which is what makes the resulting
/// cube genuinely twisted (non-bipartite) rather than a relabelled `Q_n`.
#[inline]
fn twist(x: usize, width: usize) -> usize {
    if width >= 2 {
        x ^ (((x >> 1).count_ones() & 1) as usize)
    } else {
        x
    }
}

/// The twisted cube `TQ_n` with a prefix decomposition into `TQ_m` copies.
#[derive(Clone, Debug)]
pub struct TwistedCube {
    n: usize,
    m: usize,
    /// Memoised certified fault capacity (see `driver_fault_bound`).
    capacity: OnceLock<usize>,
}

impl TwistedCube {
    /// Build `TQ_n` with the paper's minimal partition dimension (`n ≥ 7`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1 && n < usize::BITS as usize);
        let m = minimal_partition_dim(2, n, n).unwrap_or_else(|| {
            panic!("TQ_{n}: no partition dimension satisfies Theorem 3 (need n ≥ 7)")
        });
        TwistedCube {
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Build `TQ_n` with an explicit subcube dimension.
    pub fn with_partition_dim(n: usize, m: usize) -> Self {
        assert!(m >= 1 && m < n);
        TwistedCube {
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }
}

impl Topology for TwistedCube {
    fn node_count(&self) -> usize {
        1 << self.n
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        // Matching edges, from the outermost level down: at level w the
        // matching joins the two (w−1)-sub-twisted-cubes inside the copy of
        // TQ_w containing u.
        for w in (2..=self.n).rev() {
            let above = u >> w << w; // bits ≥ w (the enclosing copy)
            let side = (u >> (w - 1)) & 1;
            let low = u & ((1 << (w - 1)) - 1);
            let v = above | ((side ^ 1) << (w - 1)) | twist(low, w - 1);
            out.push(v);
        }
        // Base level: TQ_1 = K_2.
        out.push(u ^ 1);
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n
    }
    fn max_degree(&self) -> usize {
        self.n
    }
    fn min_degree(&self) -> usize {
        self.n
    }
    fn diagnosability(&self) -> usize {
        self.n
    }
    fn connectivity(&self) -> usize {
        self.n
    }
    fn name(&self) -> String {
        format!("TQ_{}", self.n)
    }
}

impl Partitionable for TwistedCube {
    fn part_count(&self) -> usize {
        1 << (self.n - self.m)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u >> self.m
    }
    fn representative(&self, part: usize) -> NodeId {
        part << self.m
    }
    fn part_size(&self, _part: usize) -> usize {
        1 << self.m
    }
    fn driver_fault_bound(&self) -> usize {
        // The twisted `TQ_m` parts are dense and shallow, so the honest
        // probe tree's internal-node count — not the part size — limits the
        // §4.1 certificate (`TQ_4` parts top out at 7 internal nodes, below
        // δ = 7 for `TQ_7`). Cap at what every part can certify; the O(Δ·N)
        // capacity scan runs once per struct, memoised behind a `OnceLock`.
        *self.capacity.get_or_init(|| {
            crate::partition::certified_fault_capacity(self).min(self.diagnosability())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn tq1_is_k2() {
        let g = TwistedCube {
            n: 1,
            m: 1,
            capacity: OnceLock::new(),
        };
        assert_eq!(g.neighbors(0), vec![1]);
    }

    #[test]
    fn tq2_is_c4() {
        let g = TwistedCube::with_partition_dim(2, 1);
        assert_family_structure(&g, 4, 2, true);
    }

    #[test]
    fn tq3_to_tq6_structure() {
        assert_family_structure(&TwistedCube::with_partition_dim(3, 2), 8, 3, true);
        assert_family_structure(&TwistedCube::with_partition_dim(4, 2), 16, 4, true);
        assert_family_structure(&TwistedCube::with_partition_dim(5, 3), 32, 5, true);
        assert_family_structure(&TwistedCube::with_partition_dim(6, 3), 64, 6, true);
    }

    #[test]
    fn twist_is_an_involution() {
        for w in 0..6usize {
            for x in 0..(1usize << w.max(1)) {
                assert_eq!(twist(twist(x, w), w), x);
            }
        }
    }

    #[test]
    fn is_genuinely_twisted() {
        // TQ_3 must not be isomorphic to Q_3: Q_3 is bipartite (no odd
        // cycles), while the twist creates a 5-cycle. Check for an odd cycle
        // by 2-colouring.
        let g = TwistedCube::with_partition_dim(3, 2);
        let mut colour = [u8::MAX; 8];
        let mut stack = vec![0usize];
        colour[0] = 0;
        let mut bipartite = true;
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                if colour[v] == u8::MAX {
                    colour[v] = colour[u] ^ 1;
                    stack.push(v);
                } else if colour[v] == colour[u] {
                    bipartite = false;
                }
            }
        }
        assert!(!bipartite, "TQ_3 should contain an odd cycle");
    }

    #[test]
    fn prefix_parts_induce_twisted_cubes() {
        let g = TwistedCube::with_partition_dim(5, 3);
        validate_partition(&g).unwrap();
        let sub = TwistedCube {
            n: 3,
            m: 1,
            capacity: OnceLock::new(),
        };
        for p in 0..g.part_count() {
            let base = p << 3;
            for x in 0..8usize {
                let mut expect: Vec<_> = sub.neighbors(x).iter().map(|&y| base | y).collect();
                let mut got: Vec<_> = g
                    .neighbors(base | x)
                    .into_iter()
                    .filter(|&v| v >> 3 == p)
                    .collect();
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(expect, got, "part {p}, offset {x}");
            }
        }
    }

    #[test]
    fn fault_bound_is_memoised() {
        let g = TwistedCube::new(7);
        assert!(g.capacity.get().is_none(), "computed lazily, not eagerly");
        let b = g.driver_fault_bound();
        assert_eq!(g.capacity.get(), Some(&b));
        assert_eq!(g.driver_fault_bound(), b);
        // A clone carries the memoised value along.
        assert_eq!(g.clone().driver_fault_bound(), b);
    }

    #[test]
    fn default_partition_for_tq7() {
        let g = TwistedCube::new(7);
        assert_eq!(g.part_count(), 8);
        g.check_partition_preconditions().unwrap();
    }
}
