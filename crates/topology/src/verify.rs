//! Structural verification helpers shared by the family test-suites and the
//! DIAG-TAB experiment: simplicity/symmetry of adjacency, regularity, and
//! machine-checking the connectivity values the paper imports from the
//! literature (the `κ ≥ δ` hypothesis of Theorem 1).

use crate::algorithms::{is_connected, vertex_connectivity};
use crate::graph::Topology;

/// Assert the adjacency relation is a simple undirected graph: no self
/// loops, no duplicates, and symmetric. Panics with a diagnostic otherwise.
pub fn assert_simple_undirected<T: Topology + ?Sized>(g: &T) {
    let n = g.node_count();
    let mut buf = Vec::new();
    let mut back = Vec::new();
    for u in 0..n {
        g.neighbors_into(u, &mut buf);
        let mut sorted = buf.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert_ne!(
                w[0],
                w[1],
                "{}: duplicate neighbour {} of {u}",
                g.name(),
                w[0]
            );
        }
        for &v in &buf {
            assert!(v < n, "{}: neighbour {v} of {u} out of range", g.name());
            assert_ne!(v, u, "{}: self loop at {u}", g.name());
            g.neighbors_into(v, &mut back);
            assert!(
                back.contains(&u),
                "{}: asymmetric edge {u} -> {v}",
                g.name()
            );
        }
    }
}

/// Assert the graph is `d`-regular.
pub fn assert_regular<T: Topology + ?Sized>(g: &T, d: usize) {
    for u in 0..g.node_count() {
        assert_eq!(
            g.degree(u),
            d,
            "{}: node {u} has degree {} (expected {d})",
            g.name(),
            g.degree(u)
        );
    }
}

/// Assert connectivity: connected, and — when `exact` — that the vertex
/// connectivity equals [`Topology::connectivity`] (Menger max-flow; only run
/// this on small instances).
pub fn assert_connectivity<T: Topology + ?Sized>(g: &T, exact: bool) {
    assert!(is_connected(g), "{} is disconnected", g.name());
    if exact {
        let kappa = vertex_connectivity(g);
        assert_eq!(
            kappa,
            g.connectivity(),
            "{}: measured κ={kappa}, claimed {}",
            g.name(),
            g.connectivity()
        );
    }
}

/// Full structural check used by every family's test-suite: simplicity,
/// regularity at the claimed degree, node count, and (optionally exact)
/// connectivity.
pub fn assert_family_structure<T: Topology + ?Sized>(
    g: &T,
    expect_nodes: usize,
    expect_degree: usize,
    exact_connectivity: bool,
) {
    assert_eq!(g.node_count(), expect_nodes, "{}: node count", g.name());
    assert_simple_undirected(g);
    assert_regular(g, expect_degree);
    assert_eq!(g.max_degree(), expect_degree, "{}: Δ", g.name());
    assert_eq!(g.min_degree(), expect_degree, "{}: d", g.name());
    assert_connectivity(g, exact_connectivity);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AdjGraph;

    #[test]
    fn cycle_passes_structure_check() {
        let edges: Vec<_> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g = AdjGraph::from_edges(6, &edges, "C6")
            .with_connectivity(2)
            .with_diagnosability(2);
        assert_family_structure(&g, 6, 2, true);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn path_fails_regularity() {
        let g = AdjGraph::from_edges(3, &[(0, 1), (1, 2)], "P3");
        assert_regular(&g, 2);
    }
}
