//! # mmdiag-topology
//!
//! Interconnection-network substrate for the `mmdiag` workspace — the graph
//! layer underneath the comparison-model fault-diagnosis algorithm of
//! Stewart, *"A general algorithm for detecting faults under the comparison
//! diagnosis model"* (IPDPS 2010).
//!
//! Provides:
//!
//! * [`graph::Topology`] — the abstract network interface (dense node ids,
//!   arithmetic adjacency) and [`graph::AdjGraph`], a CSR materialisation;
//! * [`partition::Partitionable`] — the paper's §5 decomposition hook:
//!   node-disjoint connected subgraphs with designated representatives;
//! * [`families`] — all fourteen network families the paper applies its
//!   algorithm to, each with the exact decomposition §5 uses;
//! * [`algorithms`] — BFS/connectivity utilities plus an exact Menger
//!   (max-flow) vertex-connectivity computation used to machine-verify the
//!   `κ ≥ δ` hypothesis on small instances;
//! * [`perm`] — permutation (un)ranking for the permutation families;
//! * [`cached::Cached`] — a materialised view with precomputed part labels;
//! * [`verify`] — structural assertions shared by the family test-suites.
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod cached;
pub mod families;
pub mod graph;
pub mod partition;
pub mod perm;
pub mod verify;

pub use cached::{materialisation_count, Cached};
pub use graph::{AdjGraph, NodeId, Topology};
pub use partition::{
    certified_fault_capacity, certified_partition_dim, honest_probe_contributors,
    honest_probe_contributors_local, Partitionable,
};
