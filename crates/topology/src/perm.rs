//! Ranking and unranking of permutations and k-permutations.
//!
//! The permutation-based families (star, (n,k)-star, pancake, arrangement
//! graphs) number their nodes by the lexicographic rank of the defining
//! (partial) permutation, so adjacency can be computed arithmetically
//! without materialising the graph.
//!
//! Symbols are `1..=n` (matching the combinatorics literature); internally
//! they are stored as `u8`, which comfortably covers every size a laptop can
//! enumerate (`12! > 4·10⁸`).

/// Maximum supported symbol-set size. `13!` overflows nothing on 64-bit but
/// enumerating it is already hopeless, so 16 gives ample headroom.
pub const MAX_N: usize = 16;

/// `n!` as usize (n ≤ 20 on 64-bit).
pub fn factorial(n: usize) -> usize {
    (1..=n).product::<usize>().max(1)
}

/// Falling factorial `n·(n−1)·…·(n−k+1)` — the number of k-permutations of
/// an n-set.
pub fn falling_factorial(n: usize, k: usize) -> usize {
    assert!(k <= n, "falling_factorial: k={k} > n={n}");
    ((n - k + 1)..=n).product::<usize>().max(1)
}

/// Lexicographic rank of a k-permutation of symbols `1..=n`.
///
/// `perm` must contain `k` distinct values in `1..=n`. Ranks run
/// `0..falling_factorial(n, k)` and order k-permutations lexicographically
/// by their symbol sequence.
pub fn rank_kperm(perm: &[u8], n: usize) -> usize {
    let k = perm.len();
    assert!(k <= n && n <= MAX_N);
    let mut used = [false; MAX_N + 1];
    let mut rank = 0usize;
    for (i, &p) in perm.iter().enumerate() {
        let p = p as usize;
        debug_assert!((1..=n).contains(&p), "symbol {p} out of range 1..={n}");
        debug_assert!(!used[p], "repeated symbol {p}");
        // Count unused symbols smaller than p.
        let smaller = (1..p).filter(|&q| !used[q]).count();
        rank += smaller * falling_factorial(n - 1 - i, k - 1 - i);
        used[p] = true;
    }
    rank
}

/// Inverse of [`rank_kperm`]: write the k-permutation with the given rank
/// into `out` (resized to length `k`).
pub fn unrank_kperm(mut rank: usize, n: usize, k: usize, out: &mut Vec<u8>) {
    assert!(k <= n && n <= MAX_N);
    debug_assert!(rank < falling_factorial(n, k));
    out.clear();
    let mut avail: Vec<u8> = (1..=n as u8).collect();
    for i in 0..k {
        let block = falling_factorial(n - 1 - i, k - 1 - i);
        let idx = rank / block;
        rank %= block;
        out.push(avail.remove(idx));
    }
}

/// Rank of a full permutation of `1..=n` (equivalent to
/// `rank_kperm(perm, n)` with `k = n`).
pub fn rank_perm(perm: &[u8], n: usize) -> usize {
    assert_eq!(perm.len(), n);
    rank_kperm(perm, n)
}

/// Inverse of [`rank_perm`].
pub fn unrank_perm(rank: usize, n: usize, out: &mut Vec<u8>) {
    unrank_kperm(rank, n, n, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(falling_factorial(5, 2), 20);
        assert_eq!(falling_factorial(4, 4), 24);
        assert_eq!(falling_factorial(7, 0), 1);
    }

    #[test]
    fn perm_rank_roundtrip_all_n4() {
        let n = 4;
        let mut buf = Vec::new();
        for r in 0..factorial(n) {
            unrank_perm(r, n, &mut buf);
            assert_eq!(rank_perm(&buf, n), r);
            // buf must be a permutation of 1..=4
            let mut sorted = buf.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn kperm_rank_roundtrip_n5_k3() {
        let (n, k) = (5, 3);
        let mut buf = Vec::new();
        let count = falling_factorial(n, k);
        assert_eq!(count, 60);
        let mut seen = std::collections::HashSet::new();
        for r in 0..count {
            unrank_kperm(r, n, k, &mut buf);
            assert_eq!(buf.len(), k);
            assert_eq!(rank_kperm(&buf, n), r);
            assert!(seen.insert(buf.clone()), "duplicate kperm {buf:?}");
        }
    }

    #[test]
    fn lexicographic_order() {
        let mut prev: Option<Vec<u8>> = None;
        let mut buf = Vec::new();
        for r in 0..falling_factorial(4, 2) {
            unrank_kperm(r, 4, 2, &mut buf);
            if let Some(p) = &prev {
                assert!(p < &buf, "rank {r} not lexicographically increasing");
            }
            prev = Some(buf.clone());
        }
    }

    #[test]
    fn identity_has_rank_zero() {
        assert_eq!(rank_perm(&[1, 2, 3, 4, 5], 5), 0);
        assert_eq!(rank_kperm(&[1, 2], 6), 0);
        let mut buf = Vec::new();
        unrank_perm(0, 6, &mut buf);
        assert_eq!(buf, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn last_rank_is_reverse() {
        let n = 5;
        let mut buf = Vec::new();
        unrank_perm(factorial(n) - 1, n, &mut buf);
        assert_eq!(buf, vec![5, 4, 3, 2, 1]);
    }
}
