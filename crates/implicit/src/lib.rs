//! # mmdiag-implicit
//!
//! The CSR-free scale layer: diagnosis over the catalog families' *generator
//! math* instead of a materialised [`mmdiag_topology::Cached`] copy.
//!
//! Every §5 family already computes adjacency arithmetically — a hypercube
//! neighbour is one XOR, a k-ary neighbour one digit bump — yet the bench
//! and the scale axis historically ran everything through `Cached`, whose
//! CSR costs `O(N·Δ)` words up front. That materialisation is what stalled
//! the scale axis at `Q^4_9` (262 144 nodes). [`ImplicitTopology`] removes
//! it:
//!
//! * **adjacency** is generated per call from the family's closed form and
//!   **sorted**, so lookups, probe order and tree growth are bit-identical
//!   to the CSR path (whose neighbour lists are sorted by construction) —
//!   the workspace cross-check suite holds `diagnose` on the two to exact
//!   equality on all fourteen families;
//! * **partition structure** stays closed-form (`part_of` is a shift, a
//!   division, or an unranking — never a label array);
//! * **probe-tree capacity** is computed lazily and part-locally
//!   ([`mmdiag_topology::honest_probe_contributors_local`], `O(|part|)`
//!   memory) the first time someone asks, instead of probing every part of
//!   the whole graph upfront;
//! * **nothing materialises**: [`MaterialisationGuard`] snapshots the
//!   process-wide [`mmdiag_topology::materialisation_count`] so the bench
//!   can assert the implicit path never called `Cached::new`.
//!
//! The driver, the execution backends, `diagnose_batch`, the event
//! simulator and the sampled verifier all consume this type unchanged
//! through the `Topology + Partitionable` traits.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mmdiag_topology::partition::honest_probe_contributors_local;
use mmdiag_topology::{materialisation_count, NodeId, Partitionable, Topology};
use std::sync::OnceLock;

/// A catalog family served straight from its generator math: closed-form
/// adjacency (sorted for CSR bit-identity), closed-form partition labels,
/// lazy part-local probe-tree capacity — no `O(N·Δ)` edge storage anywhere.
#[derive(Clone, Debug)]
pub struct ImplicitTopology<T: Partitionable> {
    inner: T,
    /// Probe-tree internal-node count of part 0, computed on first use.
    /// The catalog decompositions are part-transitive (prefix-fixed
    /// subcubes, last-symbol classes), so part 0 speaks for every part;
    /// [`ImplicitTopology::probe_capacity_of`] recomputes for any other.
    probe_capacity: OnceLock<usize>,
}

impl<T: Partitionable> ImplicitTopology<T> {
    /// Wrap a family instance. No work happens here — everything is lazy.
    pub fn new(inner: T) -> Self {
        ImplicitTopology {
            inner,
            probe_capacity: OnceLock::new(),
        }
    }

    /// The wrapped family.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Closed-form edge test — delegates to the family's `are_adjacent`
    /// (one XOR/popcount for the bit-string families, a digit comparison
    /// for the radix families), never an adjacency scan over stored edges.
    #[inline]
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.inner.are_adjacent(u, v)
    }

    /// Internal-node count of the honest (all-`Agree`) probe tree grown in
    /// part 0, memoised on first call. Computed part-locally: probing one
    /// 64-node part of a 10⁶⁺-node instance allocates `O(|part|)`, not
    /// `O(N)`.
    pub fn probe_capacity(&self) -> usize {
        *self
            .probe_capacity
            .get_or_init(|| honest_probe_contributors_local(self, 0))
    }

    /// Probe-tree capacity of an arbitrary part (uncached; part 0 is the
    /// memoised fast path).
    pub fn probe_capacity_of(&self, part: usize) -> usize {
        if part == 0 {
            self.probe_capacity()
        } else {
            honest_probe_contributors_local(self, part)
        }
    }

    /// Whether a fault-free part can certify the driver's fault bound —
    /// the §4.1 certificate needs strictly more probe-tree internal nodes
    /// than faults. Cheap even at 10⁷ nodes (one part-local probe).
    pub fn certifies(&self) -> bool {
        self.probe_capacity() > self.inner.driver_fault_bound()
    }
}

impl<T: Partitionable> Topology for ImplicitTopology<T> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        // CSR neighbour lists are sorted; matching that order here is what
        // makes implicit and Cached diagnoses bit-identical (Set_Builder's
        // parent assignment and spread heuristic are scan-order dependent).
        // Families that can generate ascending (the hypercube's bit trick)
        // skip the per-call sort through `neighbors_into_sorted`.
        self.inner.neighbors_into_sorted(u, out);
    }
    fn neighbors_into_sorted(&self, u: NodeId, out: &mut Vec<NodeId>) {
        self.inner.neighbors_into_sorted(u, out);
    }
    fn neighbors_sorted_until(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        self.inner.neighbors_sorted_until(u, visit);
    }
    fn has_sorted_adjacency(&self) -> bool {
        true
    }
    fn degree(&self, u: NodeId) -> usize {
        self.inner.degree(u)
    }
    fn max_degree(&self) -> usize {
        self.inner.max_degree()
    }
    fn min_degree(&self) -> usize {
        self.inner.min_degree()
    }
    fn diagnosability(&self) -> usize {
        self.inner.diagnosability()
    }
    fn connectivity(&self) -> usize {
        self.inner.connectivity()
    }
    fn name(&self) -> String {
        self.inner.name()
    }
    fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.inner.are_adjacent(u, v)
    }
    fn edge_count(&self) -> usize {
        self.inner.edge_count()
    }
}

impl<T: Partitionable> Partitionable for ImplicitTopology<T> {
    fn part_count(&self) -> usize {
        self.inner.part_count()
    }
    fn part_of(&self, u: NodeId) -> usize {
        self.inner.part_of(u)
    }
    fn representative(&self, part: usize) -> NodeId {
        self.inner.representative(part)
    }
    fn part_size(&self, part: usize) -> usize {
        self.inner.part_size(part)
    }
    fn driver_fault_bound(&self) -> usize {
        self.inner.driver_fault_bound()
    }
    fn check_partition_preconditions(&self) -> Result<(), String> {
        self.inner.check_partition_preconditions()
    }
}

/// Snapshot of the process-wide `Cached::new` counter: the bench's implicit
/// cells open one of these before running and assert it unchanged after,
/// proving the scale path stayed CSR-free.
pub struct MaterialisationGuard {
    start: u64,
}

impl MaterialisationGuard {
    /// Record the current materialisation count.
    pub fn begin() -> Self {
        MaterialisationGuard {
            start: materialisation_count(),
        }
    }

    /// How many `Cached::new` calls happened since [`Self::begin`].
    pub fn materialisations_since(&self) -> u64 {
        materialisation_count() - self.start
    }

    /// Panic if anything materialised a CSR copy since the snapshot.
    pub fn assert_unchanged(&self, context: &str) {
        let n = self.materialisations_since();
        assert_eq!(
            n, 0,
            "{context}: {n} Cached::new materialisation(s) on the implicit path"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_topology::families::{Hypercube, StarGraph};
    use mmdiag_topology::Cached;

    #[test]
    fn neighbors_are_sorted_and_match_inner_as_sets() {
        let g = ImplicitTopology::new(StarGraph::new(5));
        assert!(g.has_sorted_adjacency());
        for u in (0..g.node_count()).step_by(11) {
            let sorted = g.neighbors(u);
            assert!(sorted.windows(2).all(|w| w[0] < w[1]), "node {u}");
            let mut raw = g.inner().neighbors(u);
            raw.sort_unstable();
            assert_eq!(sorted, raw);
        }
    }

    #[test]
    fn hypercube_sorted_generation_matches_cached_csr() {
        // The implicit hypercube uses the ascending bit-trick generator;
        // its neighbour lists must equal the CSR's sorted slices exactly.
        let fam = Hypercube::new(7);
        let g = ImplicitTopology::new(fam.clone());
        let cached = Cached::new(&fam);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for u in 0..g.node_count() {
            g.neighbors_into(u, &mut a);
            cached.neighbors_into(u, &mut b);
            assert_eq!(a, b, "node {u}");
        }
    }

    #[test]
    fn contains_edge_matches_adjacency() {
        let g = ImplicitTopology::new(Hypercube::new(7));
        assert!(g.contains_edge(0, 1));
        assert!(!g.contains_edge(0, 3));
        assert_eq!(g.edge_count(), g.inner().edge_count());
    }

    #[test]
    fn probe_capacity_is_lazy_and_part_transitive() {
        let g = ImplicitTopology::new(Hypercube::new(7));
        assert!(g.probe_capacity.get().is_none(), "must not precompute");
        let c0 = g.probe_capacity();
        assert!(c0 > 7, "Q_7 parts certify bound 7");
        assert_eq!(g.probe_capacity_of(3), c0, "prefix parts are isomorphic");
        assert!(g.certifies());
    }

    #[test]
    fn materialisation_guard_counts_cached_news() {
        let fam = Hypercube::new(7);
        let guard = MaterialisationGuard::begin();
        let g = ImplicitTopology::new(fam.clone());
        let _ = g.probe_capacity();
        guard.assert_unchanged("implicit probe");
        let _cached = Cached::new(&fam);
        assert_eq!(guard.materialisations_since(), 1);
    }

    #[test]
    #[should_panic(expected = "materialisation")]
    fn materialisation_guard_trips_on_cached_new() {
        let guard = MaterialisationGuard::begin();
        let _cached = Cached::new(&Hypercube::new(7));
        guard.assert_unchanged("guarded section");
    }
}
