//! Property suite: [`ImplicitTopology`] must be observationally identical
//! to [`Cached`] on every one of the fourteen §5 families at the workspace
//! cross-check sizes — neighbour lists (order included: both are sorted),
//! degrees, part assignments, representatives, part sizes, fault bounds,
//! and honest probe trees (dense `O(N)` computation on the Cached copy vs
//! part-local `O(|part|)` computation on the implicit view).
//!
//! Diagnosis-level bit-identity is asserted separately by the workspace
//! `tests/cross_check.rs`; this suite pins down the structural invariants
//! that identity rests on, so a drift in any one family points straight at
//! the violated property instead of a diverged fault set.

use mmdiag_implicit::ImplicitTopology;
use mmdiag_topology::families::{
    Arrangement, AugmentedCube, AugmentedKAryNCube, CrossedCube, EnhancedHypercube,
    FoldedHypercube, Hypercube, KAryNCube, NKStar, Pancake, ShuffleCube, StarGraph, TwistedCube,
    TwistedNCube,
};
use mmdiag_topology::partition::{
    honest_probe_contributors, honest_probe_contributors_local, validate_partition,
};
use mmdiag_topology::{Cached, Partitionable, Topology};

/// One (implicit view, materialised view) pair per family, at the sizes
/// `tests/cross_check.rs` uses.
fn pairs() -> Vec<(Box<dyn Partitionable + Sync>, Cached)> {
    fn pair<T: Partitionable + Clone + Sync + 'static>(
        fam: T,
    ) -> (Box<dyn Partitionable + Sync>, Cached) {
        let cached = Cached::new(&fam);
        (Box::new(ImplicitTopology::new(fam)), cached)
    }
    vec![
        pair(Hypercube::new(7)),
        pair(CrossedCube::new(7)),
        pair(TwistedCube::new(7)),
        pair(TwistedNCube::new(7)),
        pair(FoldedHypercube::new(8)),
        pair(EnhancedHypercube::new(8, 3)),
        pair(AugmentedCube::new(10)),
        pair(ShuffleCube::new(10)),
        pair(KAryNCube::new(3, 6)),
        pair(AugmentedKAryNCube::new(4, 4)),
        pair(StarGraph::new(6)),
        pair(NKStar::new(6, 3)),
        pair(Pancake::new(6)),
        pair(Arrangement::new(6, 3)),
    ]
}

#[test]
fn covers_all_fourteen_families() {
    let mut names: Vec<String> = pairs().iter().map(|(g, _)| g.name()).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 14, "got {names:?}");
}

#[test]
fn neighbor_lists_identical_to_cached() {
    for (implicit, cached) in pairs() {
        let g = implicit.as_ref();
        assert_eq!(g.node_count(), cached.node_count(), "{}", g.name());
        assert_eq!(g.edge_count(), cached.edge_count(), "{}", g.name());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for u in 0..g.node_count() {
            g.neighbors_into(u, &mut a);
            cached.neighbors_into(u, &mut b);
            // Exact order, not just set equality: bit-identical diagnoses
            // depend on identical scan order.
            assert_eq!(a, b, "{} node {u}", g.name());
            assert_eq!(g.degree(u), cached.degree(u), "{} node {u}", g.name());
        }
        assert_eq!(g.max_degree(), cached.max_degree(), "{}", g.name());
        assert_eq!(g.min_degree(), cached.min_degree(), "{}", g.name());
    }
}

#[test]
fn partition_structure_identical_to_cached() {
    for (implicit, cached) in pairs() {
        let g = implicit.as_ref();
        assert_eq!(g.part_count(), cached.part_count(), "{}", g.name());
        assert_eq!(
            g.driver_fault_bound(),
            cached.driver_fault_bound(),
            "{}",
            g.name()
        );
        for p in 0..g.part_count() {
            assert_eq!(
                g.representative(p),
                cached.representative(p),
                "{} part {p}",
                g.name()
            );
            assert_eq!(g.part_size(p), cached.part_size(p), "{} part {p}", g.name());
        }
        for u in 0..g.node_count() {
            assert_eq!(g.part_of(u), cached.part_of(u), "{} node {u}", g.name());
        }
        validate_partition(g).unwrap_or_else(|e| panic!("{}: {e}", g.name()));
    }
}

#[test]
fn probe_trees_identical_across_all_three_computations() {
    // Dense O(N) arrays on the Cached copy, dense on the implicit view,
    // and the part-local O(|part|) variant on the implicit view must all
    // report the same internal-node count for every part.
    for (implicit, cached) in pairs() {
        let g = implicit.as_ref();
        for p in 0..g.part_count() {
            let dense_cached = honest_probe_contributors(&cached, p);
            let dense_implicit = honest_probe_contributors(&g, p);
            let local_implicit = honest_probe_contributors_local(&g, p);
            assert_eq!(dense_cached, dense_implicit, "{} part {p}", g.name());
            assert_eq!(dense_cached, local_implicit, "{} part {p}", g.name());
        }
    }
}
