//! The [`SyndromeSource`] abstraction: how diagnosis algorithms read test
//! results.
//!
//! The paper's input is *a syndrome* — a table of results, one per
//! (tester, neighbour-pair) triple. §6 argues that `Set_Builder` consults
//! far fewer entries than the whole table, so the access interface matters:
//! algorithms pull individual entries through [`SyndromeSource::lookup`],
//! and [`SyndromeSource::lookups`] exposes how many entries were consulted
//! (experiment CMP-CT / LOOKUP).

use crate::model::TestResult;
use mmdiag_topology::NodeId;
use mmdiag_trace::Counter;
use std::sync::Arc;

/// Read access to a syndrome `s`.
///
/// `lookup(u, v, w)` returns `s_u(v, w)` and must be symmetric in
/// `(v, w)`. Callers guarantee that `v` and `w` are distinct neighbours of
/// `u` in the underlying topology; implementations may panic otherwise.
pub trait SyndromeSource {
    /// Read `s_u(v, w)`.
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult;

    /// Number of entries consulted so far (0 for non-counting sources).
    fn lookups(&self) -> u64 {
        0
    }

    /// Reset the lookup counter (no-op for non-counting sources).
    fn reset_lookups(&self) {}

    /// The shared [`Counter`] cell behind [`SyndromeSource::lookups`],
    /// when this source counts. A tracing session registers this handle
    /// in its metrics registry, so the exported `oracle.lookups` metric
    /// and the report's `lookups_used` read the *same* cell — one value,
    /// not two counters that happen to agree. `None` for non-counting
    /// sources.
    fn lookup_counter(&self) -> Option<Arc<Counter>> {
        None
    }
}

impl<S: SyndromeSource + ?Sized> SyndromeSource for &S {
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        (**self).lookup(u, v, w)
    }
    fn lookups(&self) -> u64 {
        (**self).lookups()
    }
    fn reset_lookups(&self) {
        (**self).reset_lookups()
    }
    fn lookup_counter(&self) -> Option<Arc<Counter>> {
        (**self).lookup_counter()
    }
}

/// A counting adaptor: wraps any source and tallies every lookup in a
/// shared atomic [`Counter`] (so parallel probes can share it, and a
/// metrics registry can adopt it).
pub struct Counting<S> {
    inner: S,
    count: Arc<Counter>,
}

impl<S: SyndromeSource> Counting<S> {
    /// Wrap `inner` with a fresh counter.
    pub fn new(inner: S) -> Self {
        Counting {
            inner,
            count: Arc::new(Counter::new()),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SyndromeSource> SyndromeSource for Counting<S> {
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        self.count.inc();
        self.inner.lookup(u, v, w)
    }
    fn lookups(&self) -> u64 {
        self.count.get()
    }
    fn reset_lookups(&self) {
        self.count.reset();
    }
    fn lookup_counter(&self) -> Option<Arc<Counter>> {
        Some(Arc::clone(&self.count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstSource(TestResult);
    impl SyndromeSource for ConstSource {
        fn lookup(&self, _u: NodeId, _v: NodeId, _w: NodeId) -> TestResult {
            self.0
        }
    }

    #[test]
    fn counting_tallies_and_resets() {
        let c = Counting::new(ConstSource(TestResult::Agree));
        assert_eq!(c.lookups(), 0);
        for _ in 0..5 {
            assert!(c.lookup(0, 1, 2).is_agree());
        }
        assert_eq!(c.lookups(), 5);
        c.reset_lookups();
        assert_eq!(c.lookups(), 0);
    }

    #[test]
    fn reference_forwarding_counts_on_original() {
        let c = Counting::new(ConstSource(TestResult::Disagree));
        let r = &c;
        r.lookup(0, 1, 2);
        assert_eq!(c.lookups(), 1);
    }

    #[test]
    fn lookup_counter_is_the_same_cell_as_lookups() {
        let c = Counting::new(ConstSource(TestResult::Agree));
        let handle = c.lookup_counter().expect("counting source has a cell");
        c.lookup(0, 1, 2);
        c.lookup(0, 1, 2);
        // The handle *is* the counter — a registry that adopts it exports
        // exactly `lookups()`, not a second tally.
        assert_eq!(handle.get(), c.lookups());
        handle.add(3);
        assert_eq!(c.lookups(), 5);
        // Forwarding through the blanket `impl SyndromeSource for &S`
        // hands out the same cell (UFCS pins `Self = &Counting<_>`).
        let via_ref = SyndromeSource::lookup_counter(&&c).unwrap();
        assert!(std::sync::Arc::ptr_eq(&handle, &via_ref));
        // Non-counting sources have no cell.
        assert!(ConstSource(TestResult::Agree).lookup_counter().is_none());
    }
}
