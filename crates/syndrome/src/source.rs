//! The [`SyndromeSource`] abstraction: how diagnosis algorithms read test
//! results.
//!
//! The paper's input is *a syndrome* — a table of results, one per
//! (tester, neighbour-pair) triple. §6 argues that `Set_Builder` consults
//! far fewer entries than the whole table, so the access interface matters:
//! algorithms pull individual entries through [`SyndromeSource::lookup`],
//! and [`SyndromeSource::lookups`] exposes how many entries were consulted
//! (experiment CMP-CT / LOOKUP).

use crate::model::TestResult;
use mmdiag_topology::NodeId;

/// Read access to a syndrome `s`.
///
/// `lookup(u, v, w)` returns `s_u(v, w)` and must be symmetric in
/// `(v, w)`. Callers guarantee that `v` and `w` are distinct neighbours of
/// `u` in the underlying topology; implementations may panic otherwise.
pub trait SyndromeSource {
    /// Read `s_u(v, w)`.
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult;

    /// Number of entries consulted so far (0 for non-counting sources).
    fn lookups(&self) -> u64 {
        0
    }

    /// Reset the lookup counter (no-op for non-counting sources).
    fn reset_lookups(&self) {}
}

impl<S: SyndromeSource + ?Sized> SyndromeSource for &S {
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        (**self).lookup(u, v, w)
    }
    fn lookups(&self) -> u64 {
        (**self).lookups()
    }
    fn reset_lookups(&self) {
        (**self).reset_lookups()
    }
}

/// A counting adaptor: wraps any source and tallies every lookup in an
/// atomic counter (so parallel probes can share it).
pub struct Counting<S> {
    inner: S,
    count: std::sync::atomic::AtomicU64,
}

impl<S: SyndromeSource> Counting<S> {
    /// Wrap `inner` with a fresh counter.
    pub fn new(inner: S) -> Self {
        Counting {
            inner,
            count: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SyndromeSource> SyndromeSource for Counting<S> {
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.lookup(u, v, w)
    }
    fn lookups(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
    fn reset_lookups(&self) {
        self.count.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstSource(TestResult);
    impl SyndromeSource for ConstSource {
        fn lookup(&self, _u: NodeId, _v: NodeId, _w: NodeId) -> TestResult {
            self.0
        }
    }

    #[test]
    fn counting_tallies_and_resets() {
        let c = Counting::new(ConstSource(TestResult::Agree));
        assert_eq!(c.lookups(), 0);
        for _ in 0..5 {
            assert!(c.lookup(0, 1, 2).is_agree());
        }
        assert_eq!(c.lookups(), 5);
        c.reset_lookups();
        assert_eq!(c.lookups(), 0);
    }

    #[test]
    fn reference_forwarding_counts_on_original() {
        let c = Counting::new(ConstSource(TestResult::Disagree));
        let r = &c;
        r.lookup(0, 1, 2);
        assert_eq!(c.lookups(), 1);
    }
}
