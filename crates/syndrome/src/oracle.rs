//! The lazy syndrome oracle.
//!
//! [`OracleSyndrome`] answers each lookup directly from the fault set and
//! tester behaviour, without materialising anything. Semantically it is
//! indistinguishable from a [`crate::table::SyndromeTable`] generated with
//! the same parameters (a property the test-suite checks exhaustively);
//! operationally it models the §6 setting where *performing* a test is the
//! expensive step and we want to count exactly how many tests an algorithm
//! forces — `Set_Builder` driving an oracle performs only the tests it
//! reads, whereas table-based algorithms pay for all `Σ C(deg u, 2)` of
//! them up front.

use crate::fault::FaultSet;
use crate::model::{ground_truth, TestResult, TesterBehavior};
use crate::source::SyndromeSource;
use mmdiag_topology::NodeId;
use mmdiag_trace::Counter;
use std::sync::Arc;

/// A lazy, counting syndrome source computed from a planted fault set.
pub struct OracleSyndrome {
    faults: FaultSet,
    behavior: TesterBehavior,
    /// Shared so a tracing session can register the same cell as its
    /// `oracle.lookups` metric (see `SyndromeSource::lookup_counter`).
    lookups: Arc<Counter>,
}

impl OracleSyndrome {
    /// Create an oracle for the given planted faults and faulty-tester
    /// behaviour.
    pub fn new(faults: FaultSet, behavior: TesterBehavior) -> Self {
        OracleSyndrome {
            faults,
            behavior,
            lookups: Arc::new(Counter::new()),
        }
    }

    /// The planted fault set (ground truth — only tests should use this).
    pub fn planted_faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The faulty-tester behaviour.
    pub fn behavior(&self) -> TesterBehavior {
        self.behavior
    }
}

impl SyndromeSource for OracleSyndrome {
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        self.lookups.inc();
        ground_truth(&self.faults, u, v, w, self.behavior)
    }

    fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    fn reset_lookups(&self) {
        self.lookups.reset();
    }

    fn lookup_counter(&self) -> Option<Arc<Counter>> {
        Some(Arc::clone(&self.lookups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::behavior_sweep;
    use crate::table::SyndromeTable;
    use mmdiag_topology::families::{KAryNCube, StarGraph};
    use mmdiag_topology::Topology;

    /// The oracle and a generated table must agree on every defined entry.
    #[test]
    fn oracle_equals_table_everywhere() {
        let graphs: Vec<Box<dyn Topology>> = vec![
            Box::new(KAryNCube::with_partition_dim(3, 2, 1)),
            Box::new(StarGraph::new(4)),
        ];
        for g in &graphs {
            let n = g.node_count();
            let faults = FaultSet::new(n, &[1, n / 2]);
            for b in behavior_sweep(11) {
                let table = SyndromeTable::generate(g.as_ref(), &faults, b);
                let oracle = OracleSyndrome::new(faults.clone(), b);
                let mut buf = Vec::new();
                for u in 0..n {
                    g.neighbors_into(u, &mut buf);
                    for i in 0..buf.len() {
                        for j in (i + 1)..buf.len() {
                            assert_eq!(
                                table.lookup(u, buf[i], buf[j]),
                                oracle.lookup(u, buf[i], buf[j]),
                                "{}: u={u}, pair=({},{}), {b:?}",
                                g.name(),
                                buf[i],
                                buf[j]
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lookups_counted_atomically() {
        let oracle = OracleSyndrome::new(FaultSet::empty(8), TesterBehavior::AllZero);
        // Contend through the shared executor (raw `std::thread` use is
        // confined to `crates/exec` by the xtask thread-containment lint).
        mmdiag_exec::Pool::new(4).for_each_index(0..4, |_| {
            for _ in 0..100 {
                oracle.lookup(0, 1, 2);
            }
        });
        assert_eq!(oracle.lookups(), 400);
        oracle.reset_lookups();
        assert_eq!(oracle.lookups(), 0);
    }

    #[test]
    fn accessors() {
        let f = FaultSet::new(4, &[2]);
        let o = OracleSyndrome::new(f.clone(), TesterBehavior::AllOne);
        assert_eq!(o.planted_faults(), &f);
        assert_eq!(o.behavior(), TesterBehavior::AllOne);
    }
}
