//! The comparison (MM) diagnosis model of Malek and Maeng \[18, 19\], as
//! formalised in §2 of the paper.
//!
//! Every node `u` tests every pair `{v, w}` of its neighbours by sending
//! both a test message and comparing the replies. The recorded result
//! `s_u(v, w)` is:
//!
//! * for a **healthy** tester `u`: `0` iff both `v` and `w` are healthy.
//!   (The model assumes faults are permanent and that a faulty node always
//!   answers incorrectly, so two faulty nodes never produce identical
//!   replies and a faulty/healthy pair always differs.)
//! * for a **faulty** tester `u`: arbitrary — no reliance can be placed on
//!   it. [`TesterBehavior`] enumerates the adversarial conventions the
//!   generators support.

use crate::fault::FaultSet;
use mmdiag_topology::NodeId;

/// A single comparison outcome: `Agree` encodes `s_u(v,w) = 0`,
/// `Disagree` encodes `s_u(v,w) = 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestResult {
    /// Replies matched (`0`): a healthy tester proclaims both healthy.
    Agree,
    /// Replies differed (`1`): a healthy tester proclaims ≥ 1 faulty.
    Disagree,
}

impl TestResult {
    /// The `0`/`1` encoding used in the paper.
    pub fn as_bit(self) -> u8 {
        match self {
            TestResult::Agree => 0,
            TestResult::Disagree => 1,
        }
    }

    /// Inverse of [`TestResult::as_bit`].
    pub fn from_bit(b: u8) -> Self {
        if b == 0 {
            TestResult::Agree
        } else {
            TestResult::Disagree
        }
    }

    /// Whether this is `Agree` (`0`).
    pub fn is_agree(self) -> bool {
        matches!(self, TestResult::Agree)
    }
}

/// How a *faulty* tester fills in its (unreliable) comparison results.
///
/// The MM model leaves these results arbitrary, so a correct diagnosis
/// algorithm must work under every convention below; the test-suites sweep
/// all of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TesterBehavior {
    /// Always report `0` ("everyone looks healthy") — the adversarial case
    /// for `Set_Builder`, which grows sets along `0`-results: faulty
    /// testers try to inflate fake healthy trees.
    AllZero,
    /// Always report `1` — tries to make healthy neighbourhoods look
    /// suspicious.
    AllOne,
    /// Report the *correct* result despite being faulty — legal under the
    /// model ("no reliance" cuts both ways) and a useful degenerate case.
    Truthful,
    /// Report the negation of the correct result.
    Inverted,
    /// Deterministic pseudo-random results keyed on `(seed, u, {v,w})`.
    Random {
        /// Seed mixed into the per-test hash.
        seed: u64,
    },
}

/// The ground-truth MM-model result of test `s_u(v, w)` given the fault
/// set. Symmetric in `v, w` by construction.
pub fn ground_truth(
    faults: &FaultSet,
    u: NodeId,
    v: NodeId,
    w: NodeId,
    behavior: TesterBehavior,
) -> TestResult {
    outcome_from_flags(
        faults.contains(u),
        faults.contains(v),
        faults.contains(w),
        u,
        v,
        w,
        behavior,
    )
}

/// [`ground_truth`] with the three fault-membership bits already resolved —
/// the shared kernel behind every syndrome generator. Factoring the MM
/// semantics out of [`crate::fault::FaultSet`] is what lets the streaming
/// [`crate::streaming::OnDemandOracle`] answer from `O(|F|)` state (a
/// sorted member list) while staying bit-identical to the bitmap-backed
/// oracle: both funnel through this one function.
pub fn outcome_from_flags(
    u_faulty: bool,
    v_faulty: bool,
    w_faulty: bool,
    u: NodeId,
    v: NodeId,
    w: NodeId,
    behavior: TesterBehavior,
) -> TestResult {
    debug_assert_ne!(v, w, "MM tests compare two distinct neighbours");
    let honest = if v_faulty || w_faulty {
        TestResult::Disagree
    } else {
        TestResult::Agree
    };
    if !u_faulty {
        return honest;
    }
    match behavior {
        TesterBehavior::AllZero => TestResult::Agree,
        TesterBehavior::AllOne => TestResult::Disagree,
        TesterBehavior::Truthful => honest,
        TesterBehavior::Inverted => {
            if honest.is_agree() {
                TestResult::Disagree
            } else {
                TestResult::Agree
            }
        }
        TesterBehavior::Random { seed } => {
            let (a, b) = if v < w { (v, w) } else { (w, v) };
            let h = mix(seed ^ mix(u as u64) ^ mix((a as u64) << 1) ^ mix((b as u64) << 2));
            TestResult::from_bit((h & 1) as u8)
        }
    }
}

/// SplitMix64 finaliser — a cheap, well-distributed 64-bit mixer used to
/// derandomise faulty-tester answers reproducibly.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// All deterministic behaviours plus one seeded random behaviour — the
/// sweep used by correctness tests.
pub fn behavior_sweep(seed: u64) -> [TesterBehavior; 5] {
    [
        TesterBehavior::AllZero,
        TesterBehavior::AllOne,
        TesterBehavior::Truthful,
        TesterBehavior::Inverted,
        TesterBehavior::Random { seed },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults() -> FaultSet {
        FaultSet::new(6, &[3, 4])
    }

    #[test]
    fn healthy_tester_reports_pair_health() {
        let f = faults();
        for b in behavior_sweep(1) {
            // u = 0 healthy; v = 1, w = 2 healthy -> Agree.
            assert_eq!(ground_truth(&f, 0, 1, 2, b), TestResult::Agree);
            // one faulty neighbour -> Disagree.
            assert_eq!(ground_truth(&f, 0, 1, 3, b), TestResult::Disagree);
            // both faulty -> Disagree (faulty replies never coincide).
            assert_eq!(ground_truth(&f, 0, 3, 4, b), TestResult::Disagree);
        }
    }

    #[test]
    fn faulty_tester_behaviours() {
        let f = faults();
        assert_eq!(
            ground_truth(&f, 3, 0, 1, TesterBehavior::AllZero),
            TestResult::Agree
        );
        assert_eq!(
            ground_truth(&f, 3, 0, 1, TesterBehavior::AllOne),
            TestResult::Disagree
        );
        assert_eq!(
            ground_truth(&f, 3, 0, 1, TesterBehavior::Truthful),
            TestResult::Agree
        );
        assert_eq!(
            ground_truth(&f, 3, 0, 1, TesterBehavior::Inverted),
            TestResult::Disagree
        );
    }

    #[test]
    fn random_behaviour_is_symmetric_and_deterministic() {
        let f = faults();
        let b = TesterBehavior::Random { seed: 99 };
        for v in 0..6 {
            for w in 0..6 {
                if v == w {
                    continue;
                }
                let r1 = ground_truth(&f, 3, v, w, b);
                let r2 = ground_truth(&f, 3, w, v, b);
                assert_eq!(r1, r2, "asymmetric result for ({v},{w})");
                assert_eq!(r1, ground_truth(&f, 3, v, w, b));
            }
        }
    }

    #[test]
    fn random_behaviour_actually_varies() {
        let f = FaultSet::new(64, &[0]);
        let b = TesterBehavior::Random { seed: 7 };
        let mut zeros = 0;
        let mut ones = 0;
        for v in 1..64 {
            for w in (v + 1)..64 {
                match ground_truth(&f, 0, v, w, b) {
                    TestResult::Agree => zeros += 1,
                    TestResult::Disagree => ones += 1,
                }
            }
        }
        assert!(zeros > 500 && ones > 500, "zeros={zeros} ones={ones}");
    }

    #[test]
    fn bit_roundtrip() {
        assert_eq!(TestResult::from_bit(0).as_bit(), 0);
        assert_eq!(TestResult::from_bit(1).as_bit(), 1);
        assert!(TestResult::Agree.is_agree());
        assert!(!TestResult::Disagree.is_agree());
    }
}
