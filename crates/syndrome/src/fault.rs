//! Fault sets: which nodes of the network are faulty.

use mmdiag_topology::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A set of faulty nodes with `O(1)` membership tests and a canonical
/// (sorted) listing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSet {
    members: Vec<NodeId>,
    bitmap: Vec<bool>,
}

impl FaultSet {
    /// Build from an arbitrary list of node ids (duplicates are collapsed).
    /// `n` is the number of nodes in the network.
    pub fn new(n: usize, nodes: &[NodeId]) -> Self {
        let mut bitmap = vec![false; n];
        for &f in nodes {
            assert!(f < n, "faulty node {f} out of range (n = {n})");
            bitmap[f] = true;
        }
        let members = (0..n).filter(|&u| bitmap[u]).collect();
        FaultSet { members, bitmap }
    }

    /// The empty fault set over `n` nodes.
    pub fn empty(n: usize) -> Self {
        FaultSet {
            members: Vec::new(),
            bitmap: vec![false; n],
        }
    }

    /// Sample a uniformly random fault set of exactly `size` nodes.
    pub fn random<R: Rng + ?Sized>(n: usize, size: usize, rng: &mut R) -> Self {
        assert!(size <= n, "cannot pick {size} faults among {n} nodes");
        let mut ids: Vec<NodeId> = (0..n).collect();
        ids.shuffle(rng);
        ids.truncate(size);
        FaultSet::new(n, &ids)
    }

    /// Whether node `u` is faulty.
    #[inline]
    pub fn contains(&self, u: NodeId) -> bool {
        self.bitmap[u]
    }

    /// The faulty nodes in ascending order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Network size this set was built over.
    pub fn universe(&self) -> usize {
        self.bitmap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_dedups_and_sorts() {
        let f = FaultSet::new(10, &[7, 2, 7, 5]);
        assert_eq!(f.members(), &[2, 5, 7]);
        assert_eq!(f.len(), 3);
        assert!(f.contains(2) && f.contains(5) && f.contains(7));
        assert!(!f.contains(3));
    }

    #[test]
    fn empty_set() {
        let f = FaultSet::empty(4);
        assert!(f.is_empty());
        assert_eq!(f.universe(), 4);
    }

    #[test]
    fn random_has_exact_size_and_range() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for size in 0..=8 {
            let f = FaultSet::random(32, size, &mut rng);
            assert_eq!(f.len(), size);
            for &m in f.members() {
                assert!(m < 32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        FaultSet::new(3, &[3]);
    }
}
