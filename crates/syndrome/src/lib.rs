//! # mmdiag-syndrome
//!
//! The comparison (MM) diagnosis model machinery for the `mmdiag`
//! workspace: fault sets, test semantics, and syndrome representations.
//!
//! * [`fault::FaultSet`] — planted fault sets;
//! * [`model`] — MM-model test semantics ([`model::ground_truth`]) and the
//!   adversarial faulty-tester conventions ([`model::TesterBehavior`]);
//! * [`source::SyndromeSource`] — how algorithms read syndromes, with
//!   lookup accounting ([`source::Counting`]);
//! * [`table::SyndromeTable`] — the fully materialised syndrome (what
//!   Chiang–Tan-style algorithms consume);
//! * [`oracle::OracleSyndrome`] — the lazy per-test oracle (what
//!   `Set_Builder` drives, §6's minimise-the-tests setting);
//! * [`streaming::OnDemandOracle`] — the same oracle semantics from
//!   `O(|F|)` state (sorted members, no bitmap) for the 10⁶–10⁷-node
//!   implicit scale path.
#![forbid(unsafe_code)]

pub mod fault;
pub mod model;
pub mod oracle;
pub mod source;
pub mod streaming;
pub mod table;

pub use fault::FaultSet;
pub use model::{behavior_sweep, ground_truth, outcome_from_flags, TestResult, TesterBehavior};
pub use oracle::OracleSyndrome;
pub use source::{Counting, SyndromeSource};
pub use streaming::OnDemandOracle;
pub use table::SyndromeTable;
