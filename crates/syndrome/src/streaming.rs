//! The streaming syndrome oracle — `O(|F|)` state for 10⁶–10⁷-node runs.
//!
//! [`crate::oracle::OracleSyndrome`] already synthesises outcomes lazily,
//! but it owns a [`crate::fault::FaultSet`] whose bitmap is `O(N)`: one
//! byte per node of the network, allocated before the first lookup. That is
//! harmless at bench sizes and wrong at scale — a 10⁷-node instance should
//! not pay 10 MB of syndrome state to describe twenty faults.
//!
//! [`OnDemandOracle`] keeps only the sorted fault members and the behaviour
//! seed; membership is a binary search over `|F|` entries and every outcome
//! funnels through the same [`crate::model::outcome_from_flags`] kernel as
//! the bitmap oracle, so the two are bit-identical on every defined entry
//! (the test-suite sweeps this). The driver's workspaces, `diagnose_batch`
//! and the execution backends consume it unchanged through
//! [`SyndromeSource`].

use crate::fault::FaultSet;
use crate::model::{outcome_from_flags, TestResult, TesterBehavior};
use crate::source::SyndromeSource;
use mmdiag_topology::NodeId;
use mmdiag_trace::Counter;
use std::sync::Arc;

/// Words in the membership pre-filter: 16 × 64 = 1024 positions, 128
/// bytes — two cache lines, L1-resident across an entire growth sweep.
const FILTER_WORDS: usize = 16;

/// One multiply-shift hash position in the 1024-bit filter.
#[inline]
fn filter_slot(u: NodeId) -> (usize, u64) {
    let h = (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54;
    ((h >> 6) as usize, 1u64 << (h & 63))
}

/// A lazy, counting syndrome source holding `O(|F|)` state: the sorted
/// fault members plus the faulty-tester behaviour.
///
/// One instance serves an entire diagnosis, including the frontier-parallel
/// growth sweep: `lookup` takes `&self` and the counter is atomic, so pool
/// workers resolving candidates of the same frontier round query it
/// concurrently without any per-round setup or teardown. The growth engine
/// attributes lookups to rounds by differencing [`SyndromeSource::lookups`]
/// before and after each round — exact because every outcome, whichever
/// worker computed it, funnels through this one counter.
pub struct OnDemandOracle {
    members: Vec<NodeId>,
    universe: usize,
    behavior: TesterBehavior,
    /// 1024-bit one-hash Bloom filter over `members`: almost every node a
    /// diagnosis asks about is healthy, and with `|F| ≲ Δ` members the
    /// filter answers ≈ 98 % of those in one multiply and one L1 load
    /// instead of a `log |F|` branchy search — three searches per lookup,
    /// ~Δ·N lookups per large-instance grow. A set bit falls through to
    /// the exact search, so answers are bit-identical either way.
    filter: [u64; FILTER_WORDS],
    /// Shared so a tracing session can register the same cell as its
    /// `oracle.lookups` metric (see `SyndromeSource::lookup_counter`).
    lookups: Arc<Counter>,
}

/// Build the membership pre-filter for a sorted member list.
fn build_filter(members: &[NodeId]) -> [u64; FILTER_WORDS] {
    let mut filter = [0u64; FILTER_WORDS];
    for &m in members {
        let (w, bit) = filter_slot(m);
        filter[w] |= bit;
    }
    filter
}

impl OnDemandOracle {
    /// Create an oracle over a network of `universe` nodes with the given
    /// faulty members (deduplicated and sorted here) and tester behaviour.
    pub fn new(universe: usize, members: &[NodeId], behavior: TesterBehavior) -> Self {
        let mut members: Vec<NodeId> = members.to_vec();
        members.sort_unstable();
        members.dedup();
        if let Some(&last) = members.last() {
            assert!(
                last < universe,
                "faulty node {last} out of range (n = {universe})"
            );
        }
        let filter = build_filter(&members);
        OnDemandOracle {
            members,
            universe,
            behavior,
            filter,
            lookups: Arc::new(Counter::new()),
        }
    }

    /// Build from a dense [`FaultSet`], keeping only its member list.
    pub fn from_fault_set(faults: &FaultSet, behavior: TesterBehavior) -> Self {
        OnDemandOracle {
            members: faults.members().to_vec(),
            universe: faults.universe(),
            behavior,
            filter: build_filter(faults.members()),
            lookups: Arc::new(Counter::new()),
        }
    }

    /// Whether node `u` is faulty — one filter probe for the common
    /// healthy case, `O(log |F|)` on a filter hit.
    #[inline]
    pub fn is_faulty(&self, u: NodeId) -> bool {
        let (w, bit) = filter_slot(u);
        self.filter[w] & bit != 0 && self.members.binary_search(&u).is_ok()
    }

    /// The planted fault members, ascending (ground truth — only tests and
    /// the bench agreement checks should read this).
    pub fn planted_members(&self) -> &[NodeId] {
        &self.members
    }

    /// Network size this oracle describes.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The faulty-tester behaviour.
    pub fn behavior(&self) -> TesterBehavior {
        self.behavior
    }

    /// Expand to a dense [`FaultSet`] (tests and small-instance
    /// cross-checks only — this re-introduces the `O(N)` bitmap the oracle
    /// exists to avoid).
    pub fn to_fault_set(&self) -> FaultSet {
        FaultSet::new(self.universe, &self.members)
    }
}

impl SyndromeSource for OnDemandOracle {
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        self.lookups.inc();
        outcome_from_flags(
            self.is_faulty(u),
            self.is_faulty(v),
            self.is_faulty(w),
            u,
            v,
            w,
            self.behavior,
        )
    }

    fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    fn reset_lookups(&self) {
        self.lookups.reset();
    }

    fn lookup_counter(&self) -> Option<Arc<Counter>> {
        Some(Arc::clone(&self.lookups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::behavior_sweep;
    use crate::oracle::OracleSyndrome;
    use mmdiag_topology::families::{KAryNCube, StarGraph};
    use mmdiag_topology::Topology;

    /// The streaming oracle and the bitmap oracle must agree on every
    /// defined entry, for every behaviour.
    #[test]
    fn streaming_equals_bitmap_oracle_everywhere() {
        let graphs: Vec<Box<dyn Topology>> = vec![
            Box::new(KAryNCube::with_partition_dim(3, 2, 1)),
            Box::new(StarGraph::new(4)),
        ];
        for g in &graphs {
            let n = g.node_count();
            let members = [1, n / 2, n - 1];
            let faults = FaultSet::new(n, &members);
            for b in behavior_sweep(23) {
                let dense = OracleSyndrome::new(faults.clone(), b);
                let sparse = OnDemandOracle::new(n, &members, b);
                let mut buf = Vec::new();
                for u in 0..n {
                    g.neighbors_into(u, &mut buf);
                    for i in 0..buf.len() {
                        for j in (i + 1)..buf.len() {
                            assert_eq!(
                                dense.lookup(u, buf[i], buf[j]),
                                sparse.lookup(u, buf[i], buf[j]),
                                "{}: u={u}, pair=({},{}), {b:?}",
                                g.name(),
                                buf[i],
                                buf[j]
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn construction_dedups_sorts_and_roundtrips() {
        let o = OnDemandOracle::new(100, &[7, 3, 7, 99], TesterBehavior::AllZero);
        assert_eq!(o.planted_members(), &[3, 7, 99]);
        assert!(o.is_faulty(7) && !o.is_faulty(8));
        assert_eq!(o.universe(), 100);
        let dense = o.to_fault_set();
        assert_eq!(dense.members(), o.planted_members());
        let back = OnDemandOracle::from_fault_set(&dense, TesterBehavior::AllZero);
        assert_eq!(back.planted_members(), o.planted_members());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_member_rejected() {
        OnDemandOracle::new(3, &[3], TesterBehavior::AllZero);
    }

    /// The Bloom pre-filter must never change an answer: sweep every node
    /// of a universe against the exact member list, including a dense
    /// member set that saturates the 1024-bit filter.
    #[test]
    fn filter_never_flips_membership() {
        let sparse = [3usize, 977, 2048, 4095];
        let dense: Vec<usize> = (0..3000).step_by(2).collect();
        for members in [&sparse[..], &dense[..]] {
            let o = OnDemandOracle::new(4096, members, TesterBehavior::AllZero);
            for u in 0..4096 {
                assert_eq!(
                    o.is_faulty(u),
                    members.binary_search(&u).is_ok(),
                    "node {u}"
                );
            }
        }
    }

    #[test]
    fn lookups_counted_and_reset() {
        let o = OnDemandOracle::new(8, &[2], TesterBehavior::Truthful);
        assert_eq!(o.lookups(), 0);
        for _ in 0..7 {
            o.lookup(0, 1, 2);
        }
        assert_eq!(o.lookups(), 7);
        o.reset_lookups();
        assert_eq!(o.lookups(), 0);
        assert_eq!(o.behavior(), TesterBehavior::Truthful);
    }
}
