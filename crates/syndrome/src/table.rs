//! The fully materialised syndrome table.
//!
//! This is the object the paper calls "the syndrome": for every node `u`
//! and every unordered pair `{v, w}` of `u`'s neighbours, one bit
//! `s_u(v, w)`. Stored bit-packed per tester over the triangular pair
//! index, with the tester's sorted neighbour list used for position
//! lookup. Total size is `Σ_u C(deg u, 2)` bits — `O(N·Δ²)`.
//!
//! Building the table performs *every* MM test, which is exactly what
//! Chiang–Tan-style algorithms need and what `Set_Builder` avoids; the
//! bench harness uses the table's construction cost and entry count as the
//! "full syndrome" baseline of §6.

use crate::fault::FaultSet;
use crate::model::{ground_truth, TestResult, TesterBehavior};
use crate::source::SyndromeSource;
use mmdiag_topology::{NodeId, Topology};
use std::cell::Cell;

/// A complete syndrome table with per-lookup counting.
pub struct SyndromeTable {
    /// Sorted neighbour list per node (CSR).
    nbr_offsets: Vec<usize>,
    nbrs: Vec<NodeId>,
    /// Bit offset of each node's triangular block.
    bit_offsets: Vec<usize>,
    bits: Vec<u64>,
    lookups: Cell<u64>,
}

/// A non-counting view of the ground truth, used to materialise tables.
struct GroundTruthSource<'a> {
    faults: &'a FaultSet,
    behavior: TesterBehavior,
}

impl SyndromeSource for GroundTruthSource<'_> {
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        ground_truth(self.faults, u, v, w, self.behavior)
    }
}

impl SyndromeTable {
    /// Run every MM test on `g` under `faults`/`behavior` and record the
    /// results.
    pub fn generate<T: Topology + ?Sized>(
        g: &T,
        faults: &FaultSet,
        behavior: TesterBehavior,
    ) -> Self {
        assert_eq!(
            faults.universe(),
            g.node_count(),
            "fault set universe mismatch"
        );
        Self::capture(g, &GroundTruthSource { faults, behavior })
    }

    /// Materialise the table by reading *every* entry of an existing source
    /// — `Σ_u C(deg u, 2)` lookups, the up-front bill any table-first
    /// algorithm pays (and that lazy `Set_Builder` avoids). The source's
    /// lookup counter tallies the full cost.
    pub fn capture<T, S>(g: &T, s: &S) -> Self
    where
        T: Topology + ?Sized,
        S: SyndromeSource + ?Sized,
    {
        let n = g.node_count();
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        let mut nbrs = Vec::new();
        let mut bit_offsets = Vec::with_capacity(n + 1);
        let mut buf = Vec::new();
        nbr_offsets.push(0);
        bit_offsets.push(0);
        let mut total_bits = 0usize;
        for u in 0..n {
            g.neighbors_into(u, &mut buf);
            buf.sort_unstable();
            nbrs.extend_from_slice(&buf);
            nbr_offsets.push(nbrs.len());
            let d = buf.len();
            total_bits += d * (d.saturating_sub(1)) / 2;
            bit_offsets.push(total_bits);
        }
        let mut bits = vec![0u64; total_bits.div_ceil(64)];
        for u in 0..n {
            let start = nbr_offsets[u];
            let end = nbr_offsets[u + 1];
            let base = bit_offsets[u];
            let neigh = &nbrs[start..end];
            let mut idx = 0usize;
            for i in 0..neigh.len() {
                for j in (i + 1)..neigh.len() {
                    if s.lookup(u, neigh[i], neigh[j]) == TestResult::Disagree {
                        let bit = base + idx;
                        bits[bit / 64] |= 1 << (bit % 64);
                    }
                    idx += 1;
                }
            }
        }
        SyndromeTable {
            nbr_offsets,
            nbrs,
            bit_offsets,
            bits,
            lookups: Cell::new(0),
        }
    }

    /// Total number of test results stored — the size of the "whole
    /// syndrome table" of §6.
    pub fn entry_count(&self) -> usize {
        *self.bit_offsets.last().unwrap()
    }

    /// Sorted neighbour slice of `u`, as recorded at build time.
    pub fn neighbors_slice(&self, u: NodeId) -> &[NodeId] {
        &self.nbrs[self.nbr_offsets[u]..self.nbr_offsets[u + 1]]
    }

    /// Index of `v` within `u`'s sorted neighbour list.
    #[inline]
    fn nbr_index(&self, u: NodeId, v: NodeId) -> usize {
        let s = self.nbr_offsets[u];
        let e = self.nbr_offsets[u + 1];
        match self.nbrs[s..e].binary_search(&v) {
            Ok(i) => i,
            Err(_) => panic!("syndrome lookup: {v} is not a neighbour of {u}"),
        }
    }

    /// Triangular index of the unordered pair `(i, j)` with `i < j` among
    /// `d` neighbours: row-major upper triangle.
    #[inline]
    fn pair_index(i: usize, j: usize, d: usize) -> usize {
        debug_assert!(i < j && j < d);
        // entries before row i: sum_{r<i} (d-1-r) = i(2d - i - 1)/2
        i * (2 * d - i - 1) / 2 + (j - i - 1)
    }
}

impl SyndromeSource for SyndromeTable {
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        self.lookups.set(self.lookups.get() + 1);
        let d = self.nbr_offsets[u + 1] - self.nbr_offsets[u];
        let mut i = self.nbr_index(u, v);
        let mut j = self.nbr_index(u, w);
        assert_ne!(i, j, "syndrome lookup with v == w at tester {u}");
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let bit = self.bit_offsets[u] + Self::pair_index(i, j, d);
        if (self.bits[bit / 64] >> (bit % 64)) & 1 == 1 {
            TestResult::Disagree
        } else {
            TestResult::Agree
        }
    }

    fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    fn reset_lookups(&self) {
        self.lookups.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_topology::families::Hypercube;
    use mmdiag_topology::AdjGraph;

    #[test]
    fn pair_index_is_a_bijection() {
        for d in 2..8 {
            let mut seen = std::collections::HashSet::new();
            for i in 0..d {
                for j in (i + 1)..d {
                    let idx = SyndromeTable::pair_index(i, j, d);
                    assert!(idx < d * (d - 1) / 2);
                    assert!(seen.insert(idx), "collision at ({i},{j}) d={d}");
                }
            }
            assert_eq!(seen.len(), d * (d - 1) / 2);
        }
    }

    #[test]
    fn table_matches_ground_truth() {
        let g = Hypercube::with_partition_dim(4, 2);
        let faults = FaultSet::new(16, &[3, 9]);
        for b in crate::model::behavior_sweep(5) {
            let t = SyndromeTable::generate(&g, &faults, b);
            let mut buf = Vec::new();
            for u in 0..16 {
                g.neighbors_into(u, &mut buf);
                for i in 0..buf.len() {
                    for j in 0..buf.len() {
                        if i == j {
                            continue;
                        }
                        assert_eq!(
                            t.lookup(u, buf[i], buf[j]),
                            ground_truth(&faults, u, buf[i], buf[j], b),
                            "u={u} pair=({},{})",
                            buf[i],
                            buf[j]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn entry_count_matches_formula() {
        let g = Hypercube::with_partition_dim(5, 3);
        let t = SyndromeTable::generate(&g, &FaultSet::empty(32), TesterBehavior::AllZero);
        // 32 nodes, each C(5,2) = 10 tests.
        assert_eq!(t.entry_count(), 320);
    }

    #[test]
    fn lookups_counted() {
        let g = AdjGraph::from_edges(3, &[(0, 1), (0, 2)], "P3");
        let t = SyndromeTable::generate(&g, &FaultSet::empty(3), TesterBehavior::AllZero);
        assert_eq!(t.lookups(), 0);
        t.lookup(0, 1, 2);
        t.lookup(0, 2, 1);
        assert_eq!(t.lookups(), 2);
        t.reset_lookups();
        assert_eq!(t.lookups(), 0);
    }

    #[test]
    #[should_panic(expected = "not a neighbour")]
    fn non_neighbour_lookup_panics() {
        let g = AdjGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)], "g");
        let t = SyndromeTable::generate(&g, &FaultSet::empty(4), TesterBehavior::AllZero);
        t.lookup(0, 1, 3);
    }

    #[test]
    fn irregular_degrees_handled() {
        // Star K_{1,3} plus an edge: varied degrees exercise the offset
        // arithmetic.
        let g = AdjGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)], "g");
        let faults = FaultSet::new(5, &[4]);
        let t = SyndromeTable::generate(&g, &faults, TesterBehavior::AllOne);
        assert_eq!(t.lookup(0, 1, 2), TestResult::Agree);
        assert_eq!(t.lookup(0, 1, 4), TestResult::Disagree);
        assert_eq!(t.lookup(1, 0, 2), TestResult::Agree);
        // entry count: deg0=4 -> 6, deg1=2 -> 1, deg2=2 -> 1, deg3=1 -> 0, deg4=1 -> 0
        assert_eq!(t.entry_count(), 8);
    }
}
